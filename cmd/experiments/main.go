// Command experiments regenerates the tables and figures of the
// CAESAR evaluation (paper §7).
//
// Usage:
//
//	experiments -fig 12a            # one figure, full scale
//	experiments -fig all -scale quick
//	experiments -fig 12a -cpuprofile cpu.out -memprofile mem.out
//	experiments -list
//
// Figure ids: 10a 10b 11a 11b 12a 12b 12c 12d 13 14a 14b 14c summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/caesar-cep/caesar/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure id to regenerate, or 'all'")
	scaleName := flag.String("scale", "full", "sweep scale: quick or full")
	list := flag.Bool("list", false, "list figure ids and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}
	if err := run(*fig, *scaleName, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the sweep with profiling brackets around it, so figure
// runs can be profiled without editing code (go tool pprof <file>).
func run(fig, scaleName, cpuprofile, memprofile string) error {
	var scale experiments.Scale
	switch scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", scaleName)
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var sweepErr error
	if fig == "all" {
		sweepErr = experiments.RunAll(scale, os.Stdout)
	} else {
		var t *experiments.Table
		if t, sweepErr = experiments.Run(fig, scale); sweepErr == nil {
			t.Print(os.Stdout)
		}
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize only live heap objects in the profile
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("write heap profile: %w", err)
		}
	}
	return sweepErr
}
