// Command experiments regenerates the tables and figures of the
// CAESAR evaluation (paper §7).
//
// Usage:
//
//	experiments -fig 12a            # one figure, full scale
//	experiments -fig all -scale quick
//	experiments -list
//
// Figure ids: 10a 10b 11a 11b 12a 12b 12c 12d 13 14a 14b 14c summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/caesar-cep/caesar/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure id to regenerate, or 'all'")
	scaleName := flag.String("scale", "full", "sweep scale: quick or full")
	list := flag.Bool("list", false, "list figure ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}

	if *fig == "all" {
		if err := experiments.RunAll(scale, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	t, err := experiments.Run(*fig, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	t.Print(os.Stdout)
}
