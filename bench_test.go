package caesar

import (
	"fmt"
	"testing"

	"github.com/caesar-cep/caesar/internal/experiments"
)

// benchScale sizes the per-figure benchmarks so the whole suite
// completes in minutes. cmd/experiments -scale full runs the
// paper-proportioned sweeps.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Name:       "bench",
		LRDuration: 420,
		LRSegments: 3,
		Workers:    4,
		MaxQueries: 6,
		MaxRoads:   3,
		MaxOps:     17,
		MaxOverlap: 8,
	}
}

// benchFigure runs one figure regeneration per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("figure %s produced no rows", id)
		}
	}
}

// One benchmark per table/figure of the paper's evaluation (§7).

func BenchmarkFig10a(b *testing.B) { benchFigure(b, "10a") } // events per segment
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "10b") } // events per minute
func BenchmarkFig11a(b *testing.B) { benchFigure(b, "11a") } // optimizer search
func BenchmarkFig11b(b *testing.B) { benchFigure(b, "11b") } // L-factor
func BenchmarkFig12a(b *testing.B) { benchFigure(b, "12a") } // query workload CA vs CI
func BenchmarkFig12b(b *testing.B) { benchFigure(b, "12b") } // stream rate CA vs CI
func BenchmarkFig12c(b *testing.B) { benchFigure(b, "12c") } // window length
func BenchmarkFig12d(b *testing.B) { benchFigure(b, "12d") } // window count
func BenchmarkFig13(b *testing.B)  { benchFigure(b, "13") }  // window distributions
func BenchmarkFig14a(b *testing.B) { benchFigure(b, "14a") } // overlap count sharing
func BenchmarkFig14b(b *testing.B) { benchFigure(b, "14b") } // overlap length sharing
func BenchmarkFig14c(b *testing.B) { benchFigure(b, "14c") } // shared workload size

// Engine micro-benchmarks: end-to-end throughput of the strategies
// the paper compares, on a fixed Linear Road stream.

func lrBenchEngine(b *testing.B, cfg Config) (*Engine, []*Event) {
	b.Helper()
	eng, err := NewFromSource(LinearRoadModel(4), cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := LinearRoadDefaults()
	gen.Segments = 4
	gen.Duration = 600
	events, err := GenerateLinearRoad(gen, eng.Registry())
	if err != nil {
		b.Fatal(err)
	}
	return eng, events
}

func runEngineBench(b *testing.B, cfg Config) {
	eng, events := lrBenchEngine(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Run(NewSliceSource(events))
		if err != nil {
			b.Fatal(err)
		}
		if st.OutputCount == 0 {
			b.Fatal("no outputs")
		}
	}
	b.ReportMetric(float64(len(events)), "events/op")
}

func BenchmarkEngineContextAware(b *testing.B) {
	runEngineBench(b, Config{PartitionBy: LinearRoadPartitionBy(), Workers: 4})
}

func BenchmarkEngineContextAwareShared(b *testing.B) {
	runEngineBench(b, Config{PartitionBy: LinearRoadPartitionBy(), Workers: 4, Sharing: true})
}

func BenchmarkEngineContextIndependent(b *testing.B) {
	runEngineBench(b, Config{PartitionBy: LinearRoadPartitionBy(), Workers: 4, ContextIndependent: true})
}

func BenchmarkEngineNoPushDown(b *testing.B) {
	runEngineBench(b, Config{PartitionBy: LinearRoadPartitionBy(), Workers: 4, DisablePushDown: true})
}

func BenchmarkEngineSingleWorker(b *testing.B) {
	runEngineBench(b, Config{PartitionBy: LinearRoadPartitionBy(), Workers: 1})
}

// dispatchBenchModel keeps the query workload minimal so the ingest/
// dispatch path — tick formation, partition key extraction, worker
// hand-off — dominates the per-event cost.
const dispatchBenchModel = `
EVENT PositionReport(vid int, xway int, lane int, dir int, seg int, pos int, speed int, sec int)
EVENT Halted(vid int, seg int)

CONTEXT clear DEFAULT

DERIVE Halted(p.vid, p.seg)
PATTERN PositionReport p
WHERE p.speed < 0
`

// BenchmarkEngineDispatchBound measures end-to-end throughput in the
// distributor-bound regime: a real Linear Road position report stream
// over many (xway, dir, seg) partitions with a near-empty query
// workload, isolating the cost of ingesting and routing one event.
func BenchmarkEngineDispatchBound(b *testing.B) {
	eng, err := NewFromSource(dispatchBenchModel, Config{
		PartitionBy: LinearRoadPartitionBy(),
		Workers:     4,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := LinearRoadDefaults()
	gen.Segments = 20
	gen.Duration = 1200
	events, err := GenerateLinearRoad(gen, eng.Registry())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Run(NewSliceSource(events))
		if err != nil {
			b.Fatal(err)
		}
		if st.Events != uint64(len(events)) {
			b.Fatal("events lost")
		}
	}
	b.ReportMetric(float64(len(events)), "events/op")
}

// BenchmarkEngineSharded is the sharded runtime's scaling series: the
// dispatch-bound workload of BenchmarkEngineDispatchBound across
// shard counts (shards=1 is the legacy distributor + worker-pool
// pipeline), with the stage tracer enabled at its default 1-in-64
// sample rate — the series doubles as the proof that sampled tracing
// costs nothing measurable. scripts/bench.sh renders this series into
// BENCH_scaling.json; speedup over shards=1 is bounded by the
// machine's core count — see EXPERIMENTS.md for measured numbers and
// the hardware note.
func BenchmarkEngineSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := NewFromSource(dispatchBenchModel, Config{
				PartitionBy: LinearRoadPartitionBy(),
				Shards:      shards,
				Stages:      NewStageTracer(0, 0),
			})
			if err != nil {
				b.Fatal(err)
			}
			gen := LinearRoadDefaults()
			gen.Segments = 20
			gen.Duration = 1200
			events, err := GenerateLinearRoad(gen, eng.Registry())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := eng.Run(NewSliceSource(events))
				if err != nil {
					b.Fatal(err)
				}
				if st.Events != uint64(len(events)) {
					b.Fatal("events lost")
				}
			}
			b.ReportMetric(float64(len(events)), "events/op")
		})
	}
}
