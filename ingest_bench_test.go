package caesar

import (
	"bytes"
	"testing"
)

// dispatchGen sizes the stream for the ingest-bound benchmarks: the
// same shape BenchmarkEngineDispatchBound uses.
func dispatchGen() LinearRoadConfig {
	gen := LinearRoadDefaults()
	gen.Segments = 20
	gen.Duration = 1200
	return gen
}

// BenchmarkEngineWireIngest is the full ingest pipeline end to end:
// wire bytes through the arena decoder, the read-ahead ring and the
// dispatch loop, under the minimal query workload so decode + routing
// dominate. The Reader and its arena are reused across iterations.
func BenchmarkEngineWireIngest(b *testing.B) {
	eng, err := NewFromSource(dispatchBenchModel, Config{
		PartitionBy: LinearRoadPartitionBy(),
		Workers:     4,
	})
	if err != nil {
		b.Fatal(err)
	}
	events, err := GenerateLinearRoad(dispatchGen(), eng.Registry())
	if err != nil {
		b.Fatal(err)
	}
	var wire bytes.Buffer
	w := NewEventWriter(&wire)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	raw := wire.Bytes()
	br := bytes.NewReader(raw)
	rd := NewEventReader(br, eng.Registry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(raw)
		rd.Reset(br)
		st, err := eng.Run(rd)
		if err != nil {
			b.Fatal(err)
		}
		if st.Events != uint64(len(events)) {
			b.Fatal("events lost")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
}

// BenchmarkEngineBatchStream feeds the engine from the arena-backed
// Linear Road generator: no decode, no per-event allocation anywhere
// on the ingest side — the dispatch loop is the remaining cost.
func BenchmarkEngineBatchStream(b *testing.B) {
	eng, err := NewFromSource(dispatchBenchModel, Config{
		PartitionBy: LinearRoadPartitionBy(),
		Workers:     4,
	})
	if err != nil {
		b.Fatal(err)
	}
	src, err := NewLinearRoadStream(dispatchGen(), eng.Registry())
	if err != nil {
		b.Fatal(err)
	}
	var n uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		st, err := eng.RunBatches(src)
		if err != nil {
			b.Fatal(err)
		}
		if st.Events == 0 {
			b.Fatal("no events")
		}
		n = st.Events
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*int(n)), "ns/event")
}

// BenchmarkEngineSyncIngest is the preserved pre-pipeline loop over
// the same stream — the before side of the ingest rebuild's ledger.
func BenchmarkEngineSyncIngest(b *testing.B) {
	eng, err := NewFromSource(dispatchBenchModel, Config{
		PartitionBy:     LinearRoadPartitionBy(),
		Workers:         4,
		DisablePipeline: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	events, err := GenerateLinearRoad(dispatchGen(), eng.Registry())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Run(NewSliceSource(events))
		if err != nil {
			b.Fatal(err)
		}
		if st.Events != uint64(len(events)) {
			b.Fatal("events lost")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
}
