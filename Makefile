.PHONY: ci test race bench bench-distributor bench-pattern experiments

# CI-grade verify: vet + build + full test suite under the race
# detector (see scripts/ci.sh).
ci:
	./scripts/ci.sh

# Tier-1 verify: the fast gate every change must keep green.
test:
	go build ./... && go test ./...

race:
	go test -race ./...

# Figure-level benchmarks plus engine micro-benchmarks.
bench:
	go test -run '^$$' -bench . -benchmem .

# Distributor hot-path benchmarks (must report 0 allocs/op).
bench-distributor:
	go test -run '^$$' -bench 'BenchmarkDistributor|BenchmarkPartitionKey' -benchmem ./internal/runtime/

# Pattern kernel steady-state benchmarks (extension must report
# 0 allocs/op); scripts/bench.sh renders the JSON report.
bench-pattern:
	go test -run '^$$' -bench 'BenchmarkPattern' -benchmem ./internal/algebra/

experiments:
	go run ./cmd/experiments -fig all -scale quick
