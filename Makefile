.PHONY: ci test race bench bench-distributor bench-pattern memprofile experiments

# CI-grade verify: vet + build + full test suite under the race
# detector (see scripts/ci.sh).
ci:
	./scripts/ci.sh

# Tier-1 verify: the fast gate every change must keep green.
test:
	go build ./... && go test ./...

race:
	go test -race ./...

# Figure-level benchmarks plus engine micro-benchmarks.
bench:
	go test -run '^$$' -bench . -benchmem .

# Distributor hot-path benchmarks (must report 0 allocs/op).
bench-distributor:
	go test -run '^$$' -bench 'BenchmarkDistributor|BenchmarkPartitionKey' -benchmem ./internal/runtime/

# Pattern kernel steady-state benchmarks (extension must report
# 0 allocs/op); scripts/bench.sh renders the JSON report.
bench-pattern:
	go test -run '^$$' -bench 'BenchmarkPattern' -benchmem ./internal/algebra/

# Allocation profile of the end-to-end context-aware workload: runs
# the benchmark with -memprofile and prints the top allocation sites
# by object count (how the 849-allocs/op derived-event tail was
# found; see DESIGN.md §3.8).
memprofile:
	go test -run '^$$' -bench 'BenchmarkEngineContextAware$$' -benchtime=10x \
		-memprofile mem.out -o caesar.test .
	go tool pprof -top -nodecount=20 -sample_index=alloc_objects caesar.test mem.out

experiments:
	go run ./cmd/experiments -fig all -scale quick
