package caesar

import (
	"fmt"
	"testing"
)

// TestDerivedArenaTollByteIdentical is the derived-event arena's
// acceptance differential (DESIGN.md §3.8): on the toll workload,
// every execution mode must produce byte-identical derived events and
// identical run statistics whether derived events come from the
// worker-owned slab arenas or the GC heap. The workload chains
// derivations (NewCar feeds Toll in-transaction) and runs long enough
// that the watermark recycles derived slabs mid-run, so a premature
// reclamation shows up as a diverging or corrupted rendering. Run
// under -race via scripts/ci.sh this also exercises the reclamation
// bound's cross-goroutine publication.
func TestDerivedArenaTollByteIdentical(t *testing.T) {
	modes := []struct {
		name string
		cfg  Config
	}{
		{"sync", Config{Workers: 3, DisablePipeline: true}},
		{"pipelined", Config{Workers: 3}},
		{"shards=1", Config{Shards: 1, Workers: 3}},
		{"shards=2", Config{Shards: 2}},
		{"shards=4", Config{Shards: 4}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			heapCfg := mode.cfg
			heapCfg.DisableDerivedArena = true
			outHeap, stHeap := runToll(t, heapCfg, func(e *Engine, evs []*Event) (*Stats, error) {
				return e.Run(NewSliceSource(evs))
			})
			// Small slabs force continuous recycling under the arena.
			arenaCfg := mode.cfg
			arenaCfg.DerivedChunkEvents = 64
			outArena, stArena := runToll(t, arenaCfg, func(e *Engine, evs []*Event) (*Stats, error) {
				return e.Run(NewSliceSource(evs))
			})
			if outHeap == "" {
				t.Fatal("toll workload derived nothing")
			}
			if outArena != outHeap {
				t.Errorf("arena output diverges from heap output (%d vs %d bytes)",
					len(outArena), len(outHeap))
			}
			if stArena.Events != stHeap.Events || stArena.OutputCount != stHeap.OutputCount ||
				stArena.Transitions != stHeap.Transitions || stArena.Partitions != stHeap.Partitions {
				t.Errorf("stats diverge: %+v vs %+v", stArena, stHeap)
			}
			if s := fmt.Sprint(stArena.PerType); s != fmt.Sprint(stHeap.PerType) {
				t.Errorf("per-type counts diverge: %v vs %v", stArena.PerType, stHeap.PerType)
			}
		})
	}
}
