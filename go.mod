module github.com/caesar-cep/caesar

go 1.22
