package caesar

import (
	"testing"

	"github.com/caesar-cep/caesar/internal/event"
	"github.com/caesar-cep/caesar/internal/linearroad"
	"github.com/caesar-cep/caesar/internal/model"
	"github.com/caesar-cep/caesar/internal/plan"
	"github.com/caesar-cep/caesar/internal/runtime"
)

// Ablation benchmarks for the design choices DESIGN.md calls out:
// each toggles one engine mechanism on the same Linear Road workload
// so `go test -bench=Ablation` quantifies its contribution.

func ablationRun(b *testing.B, opts plan.Options, sharing bool) {
	b.Helper()
	m, err := model.CompileSource(linearroad.ModelSource(4))
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := runtime.New(runtime.Config{
		Plan:        p,
		Sharing:     sharing,
		PartitionBy: linearroad.PartitionBy(),
		Workers:     4,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := linearroad.DefaultConfig()
	gen.Segments = 4
	gen.Duration = 600
	events, err := linearroad.Generate(gen, m.Registry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Run(event.NewSliceSource(events))
		if err != nil {
			b.Fatal(err)
		}
		if st.OutputCount == 0 {
			b.Fatal("no outputs")
		}
	}
}

// Context window push-down (paper §5.2, Theorem 1).
func BenchmarkAblationPushDownOn(b *testing.B) {
	ablationRun(b, plan.Optimized(), false)
}

func BenchmarkAblationPushDownOff(b *testing.B) {
	ablationRun(b, plan.Options{EagerFilters: true}, false)
}

// Eager predicate evaluation inside the pattern operator versus a
// separate downstream filter (paper Fig. 6a vs. 6b plan shapes).
func BenchmarkAblationEagerFiltersOn(b *testing.B) {
	ablationRun(b, plan.Optimized(), false)
}

func BenchmarkAblationEagerFiltersOff(b *testing.B) {
	ablationRun(b, plan.Options{PushDown: true}, false)
}

// Negation-buffer hash index (engine addition; the paper's toll query
// SEQ(NOT PositionReport p1, PositionReport p2) probes it on every
// candidate match).
func BenchmarkAblationNegIndexOn(b *testing.B) {
	ablationRun(b, plan.Optimized(), false)
}

func BenchmarkAblationNegIndexOff(b *testing.B) {
	opts := plan.Optimized()
	opts.DisableNegIndex = true
	ablationRun(b, opts, false)
}

// Context workload sharing (paper §5.3).
func BenchmarkAblationSharingOn(b *testing.B) {
	ablationRun(b, plan.Optimized(), true)
}

func BenchmarkAblationSharingOff(b *testing.B) {
	ablationRun(b, plan.Optimized(), false)
}

// Pattern fusion (MQO within the shared workload, §5.3): the Linear
// Road toll replicas share one pattern under fusion.
func BenchmarkAblationFusionOn(b *testing.B) {
	m, err := model.CompileSource(linearroad.ModelSource(8))
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		b.Fatal(err)
	}
	benchFusion(b, p, m, true)
}

func BenchmarkAblationFusionOff(b *testing.B) {
	m, err := model.CompileSource(linearroad.ModelSource(8))
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(m, plan.Optimized())
	if err != nil {
		b.Fatal(err)
	}
	benchFusion(b, p, m, false)
}

func benchFusion(b *testing.B, p *plan.Plan, m *model.Model, fusion bool) {
	b.Helper()
	eng, err := runtime.New(runtime.Config{
		Plan:        p,
		Fusion:      fusion,
		PartitionBy: linearroad.PartitionBy(),
		Workers:     4,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := linearroad.DefaultConfig()
	gen.Segments = 4
	gen.Duration = 600
	events, err := linearroad.Generate(gen, m.Registry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Run(event.NewSliceSource(events))
		if err != nil {
			b.Fatal(err)
		}
		if st.OutputCount == 0 {
			b.Fatal("no outputs")
		}
	}
}
