package caesar

import (
	"fmt"
	"testing"
)

// TestShardedTollByteIdentical is the sharded runtime's system-level
// acceptance differential: on the Linear Road toll workload, a run
// with Shards=4 must produce byte-identical derived events and
// identical statistics to Shards=1 (the classic distributor +
// worker-pool pipeline). Run under -race this stress-tests the SPSC
// ring hand-off, the per-shard completion marks, the watermark
// publication and the ordered output merge end to end.
func TestShardedTollByteIdentical(t *testing.T) {
	outRef, stRef := runToll(t, Config{Shards: 1}, func(e *Engine, evs []*Event) (*Stats, error) {
		return e.Run(NewSliceSource(evs))
	})
	if outRef == "" {
		t.Fatal("toll workload derived nothing")
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			out, st := runToll(t, Config{Shards: shards}, func(e *Engine, evs []*Event) (*Stats, error) {
				return e.Run(NewSliceSource(evs))
			})
			if out != outRef {
				t.Errorf("sharded output diverges from shards=1 (%d vs %d bytes)", len(out), len(outRef))
			}
			if st.Events != stRef.Events || st.OutputCount != stRef.OutputCount ||
				st.Txns != stRef.Txns || st.Transitions != stRef.Transitions ||
				st.Partitions != stRef.Partitions {
				t.Errorf("sharded stats diverge: %+v vs %+v", st, stRef)
			}
		})
	}
}
